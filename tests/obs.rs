//! Observability is write-only: spans, metrics, and events must never
//! feed back into computation. The tuning table an engine produces has to
//! be byte-identical whether tracing is enabled or not (the in-process
//! twin of the `obs-determinism` CI lane), and one train → table flow must
//! leave a well-populated metrics registry behind.

mod common;

use pml_mpi::obs;
use pml_mpi::Collective;
use std::sync::Arc;

fn ri_alltoall_table_json() -> String {
    let engine = common::mini_engine();
    engine
        .tuning_table("RI", Collective::Alltoall)
        .expect("tuning table")
        .to_json()
        .expect("table serializes")
}

#[test]
fn artifacts_are_byte_identical_with_observability_on_or_off() {
    // First run: the global tracer starts disabled — every span is inert.
    let bare = ri_alltoall_table_json();
    // Second run: tracing on over a deterministic clock.
    obs::tracer().enable(Arc::new(obs::FakeClock::with_step(1)));
    let traced = ri_alltoall_table_json();
    assert_eq!(
        bare, traced,
        "enabling tracing must not perturb the tuning-table artifact"
    );
    // The traced run actually produced the pipeline's stage spans. (Other
    // tests in this binary may record spans concurrently once the global
    // tracer is on; assert containment, not exact shape.)
    let forest = obs::tracer().finish();
    let agg = forest.aggregate();
    for stage in ["datagen", "train", "table"] {
        assert!(
            agg.contains_key(stage),
            "span tree missing stage {stage:?}; got {:?}",
            agg.keys().collect::<Vec<_>>()
        );
    }
}

#[test]
fn one_train_table_flow_populates_at_least_ten_metrics() {
    let engine = common::mini_engine();
    engine.train(Collective::Alltoall).expect("train");
    engine
        .tuning_table("RI", Collective::Alltoall)
        .expect("tuning table");
    let snap = obs::metrics::snapshot();
    let names: Vec<&String> = snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .chain(snap.histograms.keys())
        .collect();
    assert!(
        names.len() >= 10,
        "expected >= 10 distinct metrics, got {}: {names:?}",
        names.len()
    );
    for expected in [
        "engine.table.miss",
        "table.cells",
        "table.generated",
        "train.trees",
    ] {
        assert!(
            snap.counters.contains_key(expected),
            "missing counter {expected:?}: {names:?}"
        );
    }
    assert!(snap.gauges.contains_key("train.model.features"));
    assert!(snap.histograms.contains_key("train.tree.nodes"));
}
