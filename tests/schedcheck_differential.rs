//! Differential property test: the static analyzer (schedcheck) and the
//! executing oracle (collectives::verify over the byte interpreter) must
//! agree. For every registered algorithm across a (world, size) grid both
//! verdicts are pass; for mutated schedules the static analyzer is never
//! more permissive than the oracle — whenever schedcheck accepts a
//! schedule, running it byte-for-byte must also succeed.

use pml_mpi::collectives::schedcheck::{check_algorithm, check_schedule, sweep_grid, Spec};
use pml_mpi::collectives::verify::{
    check_allgather, check_allreduce, check_alltoall, check_bcast, VerifyError,
};
use pml_mpi::collectives::{Collective, CommSchedule, Op};

fn oracle(sch: &CommSchedule, c: Collective, size: usize) -> Result<(), VerifyError> {
    match c {
        Collective::Allgather => check_allgather(sch, size),
        Collective::Alltoall => check_alltoall(sch, size),
        Collective::Bcast => check_bcast(sch, size),
        Collective::Allreduce => check_allreduce(sch, size),
    }
}

#[test]
fn every_registered_algorithm_passes_both_verifiers() {
    let grid = sweep_grid(12, &[16, 21]);
    assert!(grid.len() > 100, "grid unexpectedly small: {}", grid.len());
    for (algo, p, size) in grid {
        let st = check_algorithm(algo, p, size);
        assert!(st.is_ok(), "static {algo:?} p={p} size={size}: {st:?}");
        let sch = algo.schedule(p, size);
        let dy = oracle(&sch, algo.collective(), size);
        assert!(dy.is_ok(), "oracle {algo:?} p={p} size={size}: {dy:?}");
    }
}

/// Generic schedule mutations applicable to any algorithm's output. Each
/// returns false if the schedule has no site for the mutation.
fn drop_last_recv(sch: &mut CommSchedule) -> bool {
    for prog in sch.ranks.iter_mut().rev() {
        for step in prog.iter_mut().rev() {
            if let Some(i) = step
                .ops
                .iter()
                .rposition(|op| matches!(op, Op::Recv { .. }))
            {
                step.ops.remove(i);
                return true;
            }
        }
    }
    false
}

fn shrink_first_recv(sch: &mut CommSchedule) -> bool {
    for prog in sch.ranks.iter_mut() {
        for step in prog.iter_mut() {
            for op in &mut step.ops {
                if let Op::Recv { region, .. } = op {
                    if region.len > 1 {
                        region.len -= 1;
                        return true;
                    }
                }
            }
        }
    }
    false
}

fn retarget_first_combine(sch: &mut CommSchedule) -> bool {
    let work_len = sch.work_len;
    for prog in sch.ranks.iter_mut() {
        for step in prog.iter_mut() {
            for op in &mut step.ops {
                if let Op::Combine { dst, .. } = op {
                    if dst.len > 0 && dst.len < work_len {
                        dst.offset = (dst.offset + dst.len) % work_len;
                        return true;
                    }
                }
            }
        }
    }
    false
}

fn zero_first_send_tag(sch: &mut CommSchedule) -> bool {
    for prog in sch.ranks.iter_mut() {
        for step in prog.iter_mut() {
            for op in &mut step.ops {
                if let Op::Send { tag, .. } = op {
                    if *tag != 0 {
                        *tag = 0;
                        return true;
                    }
                }
            }
        }
    }
    false
}

#[test]
fn static_pass_implies_oracle_pass_on_mutants() {
    type Mutation = (&'static str, fn(&mut CommSchedule) -> bool);
    let mutations: [Mutation; 4] = [
        ("drop_last_recv", drop_last_recv),
        ("shrink_first_recv", shrink_first_recv),
        ("retarget_first_combine", retarget_first_combine),
        ("zero_first_send_tag", zero_first_send_tag),
    ];
    let mut applied = 0usize;
    let mut caught_static = 0usize;
    for (algo, p, size) in sweep_grid(8, &[16]) {
        let spec = Spec::for_collective(algo.collective(), size);
        for (name, mutate) in &mutations {
            let mut sch = algo.schedule(p, size);
            if !mutate(&mut sch) {
                continue;
            }
            applied += 1;
            let st = check_schedule(&sch, &spec);
            if st.is_err() {
                caught_static += 1;
                continue;
            }
            // Soundness direction: schedcheck accepted the mutant, so the
            // execution must be indistinguishable from correct.
            let dy = oracle(&sch, algo.collective(), size);
            assert!(
                dy.is_ok(),
                "{name} on {algo:?} p={p} size={size}: static passed but oracle failed: {dy:?}"
            );
        }
    }
    assert!(applied > 50, "too few mutants applied: {applied}");
    // Dropping a receive always strands its send; at minimum those must
    // all be caught statically, so the static catch rate can't be tiny.
    assert!(
        caught_static * 4 >= applied,
        "static analyzer caught only {caught_static}/{applied} mutants"
    );
}
