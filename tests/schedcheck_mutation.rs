//! Mutation harness for schedcheck: corrupt known-good schedules one
//! defect at a time and check that static verification reports the exact
//! [`SchedError`] variant for each corruption class — and that no
//! corruption panics the analyzer. The bases are real generated schedules
//! (ring allgather, ring allreduce), so the mutations also pin down which
//! check fires first when a corruption could trip several.

use pml_mpi::collectives::schedcheck::{check_schedule, SchedError, Spec};
use pml_mpi::collectives::schedule::{Buf, CommSchedule, Op, Region};
use pml_mpi::collectives::{AllgatherAlgo, AllreduceAlgo};

const P: u32 = 4;
const B: usize = 8;

fn ring_allgather() -> (CommSchedule, Spec) {
    (
        AllgatherAlgo::Ring.schedule(P, B),
        Spec::Allgather { block: B },
    )
}

fn ring_allreduce() -> (CommSchedule, Spec) {
    (
        AllreduceAlgo::RingReduceScatter.schedule(P, B),
        Spec::Allreduce { msg: B },
    )
}

/// Locate the first op matching `pred` and return its (rank, step, op)
/// coordinates.
fn find_op(s: &CommSchedule, pred: impl Fn(&Op) -> bool) -> (usize, usize, usize) {
    for (r, prog) in s.ranks.iter().enumerate() {
        for (si, step) in prog.iter().enumerate() {
            for (oi, op) in step.ops.iter().enumerate() {
                if pred(op) {
                    return (r, si, oi);
                }
            }
        }
    }
    panic!("no op matched the predicate");
}

/// (step, op) coordinates of every send posted by `rank`, program order.
fn send_coords(s: &CommSchedule, rank: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (si, step) in s.ranks[rank].iter().enumerate() {
        for (oi, op) in step.ops.iter().enumerate() {
            if matches!(op, Op::Send { .. }) {
                out.push((si, oi));
            }
        }
    }
    out
}

/// Read rank 0's send tag at `(step, op)`, optionally overwriting it.
fn send_tag(s: &mut CommSchedule, (si, oi): (usize, usize), set: Option<u32>) -> u32 {
    match &mut s.ranks[0][si].ops[oi] {
        Op::Send { tag, .. } => {
            let old = *tag;
            if let Some(v) = set {
                *tag = v;
            }
            old
        }
        other => panic!("expected a send, got {other:?}"),
    }
}

#[test]
fn bases_pass() {
    let (sch, spec) = ring_allgather();
    check_schedule(&sch, &spec).unwrap();
    let (sch, spec) = ring_allreduce();
    check_schedule(&sch, &spec).unwrap();
}

#[test]
fn dropped_recv_is_an_unmatched_send() {
    let (mut sch, spec) = ring_allgather();
    let (r, si, oi) = find_op(&sch, |op| matches!(op, Op::Recv { .. }));
    sch.ranks[r][si].ops.remove(oi);
    let err = check_schedule(&sch, &spec).unwrap_err();
    assert!(matches!(err, SchedError::UnmatchedSend { .. }), "{err:?}");
}

#[test]
fn dropped_send_is_an_unmatched_recv() {
    let (mut sch, spec) = ring_allgather();
    let (r, si, oi) = find_op(&sch, |op| matches!(op, Op::Send { .. }));
    sch.ranks[r][si].ops.remove(oi);
    let err = check_schedule(&sch, &spec).unwrap_err();
    assert!(matches!(err, SchedError::UnmatchedRecv { .. }), "{err:?}");
}

#[test]
fn swapped_tags_are_a_fifo_violation() {
    // Swap the tags of rank 0's first two sends (ring: both go to the same
    // neighbor, so the receiver's FIFO order no longer matches).
    let (mut sch, spec) = ring_allgather();
    let sends = send_coords(&sch, 0);
    assert!(sends.len() >= 2, "ring rank 0 posts at least two sends");
    let t0 = send_tag(&mut sch, sends[0], None);
    let t1 = send_tag(&mut sch, sends[1], Some(t0));
    send_tag(&mut sch, sends[0], Some(t1));
    let err = check_schedule(&sch, &spec).unwrap_err();
    assert!(
        matches!(err, SchedError::TagOrderViolation { index: 0, .. }),
        "{err:?}"
    );
}

#[test]
fn shrunk_recv_region_is_a_size_mismatch() {
    let (mut sch, spec) = ring_allgather();
    let (r, si, oi) = find_op(&sch, |op| matches!(op, Op::Recv { .. }));
    if let Op::Recv { region, .. } = &mut sch.ranks[r][si].ops[oi] {
        region.len -= 1;
    }
    let err = check_schedule(&sch, &spec).unwrap_err();
    assert!(
        matches!(err, SchedError::MessageSizeMismatch { .. }),
        "{err:?}"
    );
}

#[test]
fn retargeted_combine_is_a_postcondition_mismatch() {
    // Shift one reduction to the wrong chunk: the victim chunk is missing
    // a contribution and the target chunk reduces one twice. Structurally
    // and dataflow-wise the schedule stays healthy — only the provenance
    // multisets disagree with the allreduce spec.
    let (mut sch, spec) = ring_allreduce();
    let (r, si, oi) = find_op(&sch, |op| matches!(op, Op::Combine { .. }));
    if let Op::Combine { dst, .. } = &mut sch.ranks[r][si].ops[oi] {
        dst.offset = (dst.offset + dst.len) % sch.work_len;
    }
    let err = check_schedule(&sch, &spec).unwrap_err();
    assert!(
        matches!(err, SchedError::PostconditionMismatch { .. }),
        "{err:?}"
    );
}

#[test]
fn read_of_never_written_bytes_is_an_uninit_read() {
    // Prepend a copy whose source no rank has written yet. The ring fills
    // work block 1 of rank 0 only via a later receive.
    let (mut sch, spec) = ring_allgather();
    sch.ranks[0][0].ops.insert(
        0,
        Op::Copy {
            src: Region::work(B, B),
            dst: Region::work(2 * B, B),
        },
    );
    let err = check_schedule(&sch, &spec).unwrap_err();
    assert!(
        matches!(
            err,
            SchedError::UninitRead {
                buf: Buf::Work,
                offset: B,
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn overlapping_recvs_in_one_step_are_a_hazard() {
    // Two same-step receives writing overlapping bytes: completion order
    // is unspecified, so the overlap bytes would be racy.
    let (mut sch, spec) = ring_allgather();
    // Rank 0 receives from rank 3 in steps 1..=3 (ring predecessor). Move
    // the second recv into the first recv's step and shift its region to
    // straddle the first's.
    let mut recvs = Vec::new();
    for (si, step) in sch.ranks[0].iter().enumerate() {
        for (oi, op) in step.ops.iter().enumerate() {
            if matches!(op, Op::Recv { .. }) {
                recvs.push((si, oi));
            }
        }
    }
    assert!(recvs.len() >= 2);
    let (s2, o2) = recvs[1];
    let mut moved = sch.ranks[0][s2].ops.remove(o2);
    let (s1, o1) = recvs[0];
    let first_region = match &sch.ranks[0][s1].ops[o1] {
        Op::Recv { region, .. } => *region,
        _ => unreachable!(),
    };
    if let Op::Recv { region, .. } = &mut moved {
        // Same destination bytes as the first recv: a full overlap.
        *region = first_region;
    }
    sch.ranks[0][s1].ops.push(moved);
    let err = check_schedule(&sch, &spec).unwrap_err();
    assert!(
        matches!(err, SchedError::RecvOverlap { rank: 0, .. }),
        "{err:?}"
    );
}

#[test]
fn wait_cycle_is_a_deadlock() {
    // Hand-built two-rank exchange where each rank waits before sending.
    let b = 8usize;
    let mk = |peer: u32| {
        vec![
            pml_mpi::collectives::Step {
                ops: vec![Op::Recv {
                    from: peer,
                    tag: 0,
                    region: Region::work(0, b),
                }],
            },
            pml_mpi::collectives::Step {
                ops: vec![Op::Send {
                    to: peer,
                    tag: 0,
                    region: Region::input(0, b),
                }],
            },
        ]
    };
    let sch = CommSchedule {
        world: 2,
        block: b,
        input_len: b,
        work_len: b,
        aux_len: 0,
        work_initialized_from_input: false,
        ranks: vec![mk(1), mk(0)],
    };
    let err = check_schedule(&sch, &Spec::Bcast { msg: b }).unwrap_err();
    match err {
        SchedError::Deadlock { cycle } => assert!(cycle.len() >= 4, "{cycle:?}"),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn self_send_is_a_bad_peer() {
    let (mut sch, spec) = ring_allgather();
    let (r, si, oi) = find_op(&sch, |op| matches!(op, Op::Send { .. }));
    if let Op::Send { to, .. } = &mut sch.ranks[r][si].ops[oi] {
        *to = r as u32;
    }
    let err = check_schedule(&sch, &spec).unwrap_err();
    assert!(matches!(err, SchedError::BadPeer { .. }), "{err:?}");
}

#[test]
fn overflowing_region_is_out_of_bounds() {
    let (mut sch, spec) = ring_allgather();
    let (r, si, oi) = find_op(&sch, |op| matches!(op, Op::Copy { .. }));
    if let Op::Copy { dst, .. } = &mut sch.ranks[r][si].ops[oi] {
        dst.offset = usize::MAX - 2;
    }
    let err = check_schedule(&sch, &spec).unwrap_err();
    assert!(
        matches!(err, SchedError::RegionOutOfBounds { .. }),
        "{err:?}"
    );
}

#[test]
fn useless_copy_is_a_dead_op() {
    // A copy into Aux that nothing reads contributes no byte to any final
    // Work buffer.
    let (mut sch, spec) = ring_allgather();
    sch.aux_len = B;
    let last = sch.ranks[0].len() - 1;
    sch.ranks[0][last].ops.push(Op::Copy {
        src: Region::work(0, B),
        dst: Region::aux(0, B),
    });
    let err = check_schedule(&sch, &spec).unwrap_err();
    match err {
        SchedError::DeadOp { at } => {
            assert_eq!((at.rank, at.step), (0, last), "{at}");
        }
        other => panic!("expected dead op, got {other:?}"),
    }
}

#[test]
fn truncated_ranks_are_a_world_mismatch() {
    let (mut sch, spec) = ring_allgather();
    sch.ranks.pop();
    let err = check_schedule(&sch, &spec).unwrap_err();
    assert!(matches!(err, SchedError::WorldMismatch { .. }), "{err:?}");
}

#[test]
fn grown_work_buffer_is_a_shape_mismatch() {
    let (mut sch, spec) = ring_allgather();
    sch.work_len += 1;
    let err = check_schedule(&sch, &spec).unwrap_err();
    assert!(
        matches!(
            err,
            SchedError::SpecShapeMismatch {
                field: "work_len",
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn duplicated_tag_is_a_duplicate_message() {
    // Give rank 0's second send to its ring successor the same tag as the
    // first: two messages now share a mailbox key.
    let (mut sch, spec) = ring_allgather();
    let sends = send_coords(&sch, 0);
    assert!(sends.len() >= 2);
    send_tag(&mut sch, sends[1], Some(0));
    let err = check_schedule(&sch, &spec).unwrap_err();
    assert!(
        matches!(err, SchedError::DuplicateMessage { .. }),
        "{err:?}"
    );
}
