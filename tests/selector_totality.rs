//! Fallback totality: whatever the model (or a corrupt table) proposes,
//! `applicable_or_fallback` must hand the runtime an algorithm that is
//! actually defined at the job's world size — for every algorithm of every
//! collective, across degenerate, odd, prime, and power-of-two worlds.

use pml_mpi::{applicable_or_fallback, Algorithm, Collective};

#[test]
fn every_algorithm_world_pair_resolves_to_an_applicable_algorithm() {
    let worlds: Vec<u32> = (1..=64)
        .chain([96, 100, 127, 128, 255, 256, 509, 896, 1024, 4096, 65536])
        .collect();
    for collective in Collective::ALL {
        for preferred in Algorithm::all_for(collective) {
            for &w in &worlds {
                let chosen = applicable_or_fallback(preferred, w);
                assert!(
                    chosen.supports(w),
                    "{preferred} at world {w} fell back to {chosen}, which does not support {w}"
                );
                assert_eq!(
                    chosen.collective(),
                    collective,
                    "{preferred} at world {w} crossed collectives to {chosen}"
                );
            }
        }
    }
}

#[test]
fn applicable_preference_is_kept() {
    for collective in Collective::ALL {
        for preferred in Algorithm::all_for(collective) {
            for w in [2u32, 8, 64, 1024] {
                if preferred.supports(w) {
                    assert_eq!(applicable_or_fallback(preferred, w), preferred);
                }
            }
        }
    }
}
