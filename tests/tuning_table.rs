//! Tuning-table wire format and lookup totality, end to end: a real model
//! generates a real table, the table survives a JSON round trip, and the
//! nearest-bucket lookup answers every query the MPI runtime could pose.

mod common;

use pml_mpi::{Collective, TuningTable};

#[test]
fn json_round_trip_is_lossless() {
    let engine = common::mini_engine();
    let table = engine
        .tuning_table("RI", Collective::Allgather)
        .expect("table generates")
        .clone();
    assert!(!table.is_empty());
    let json = table.to_json().expect("table serializes");
    let back = TuningTable::from_json(&json).expect("round trip parses");
    assert_eq!(table, back);
}

#[test]
fn nearest_bucket_lookup_is_total() {
    let engine = common::mini_engine();
    let table = engine
        .tuning_table("Haswell", Collective::Alltoall)
        .expect("table generates")
        .clone();
    // Every query — on-grid, off-grid, absurdly large — must resolve to an
    // algorithm of the right collective that supports the queried world.
    for nodes in [1u32, 2, 3, 4, 7, 16, 100] {
        for ppn in [1u32, 2, 5, 8, 56, 200] {
            for msg in [1u64, 17, 1024, 65536, 1 << 22, 1 << 30] {
                let algo = table
                    .lookup(nodes, ppn, msg)
                    .expect("non-empty table answers every query");
                assert_eq!(algo.collective(), Collective::Alltoall);
            }
        }
    }
    // Exact grid points must return their own entry, not a neighbour.
    for e in table.entries() {
        assert_eq!(
            table.lookup(e.nodes, e.ppn, e.msg_size),
            Some(e.algorithm),
            "grid point ({}, {}, {}) resolved elsewhere",
            e.nodes,
            e.ppn,
            e.msg_size
        );
    }
}

#[test]
fn empty_table_is_the_only_none() {
    let table = TuningTable::new("Nowhere", Collective::Bcast);
    assert_eq!(table.lookup(4, 8, 1024), None);
}

#[test]
fn cross_collective_json_is_rejected() {
    let engine = common::mini_engine();
    let table = engine
        .tuning_table("RI", Collective::Allgather)
        .expect("table generates")
        .clone();
    // Flip only the table-level collective; the entries keep their
    // allgather algorithms, so validation must flag the mismatch.
    let sabotaged = table.to_json().expect("table serializes").replacen(
        "\"collective\": \"Allgather\"",
        "\"collective\": \"Alltoall\"",
        1,
    );
    assert!(matches!(
        TuningTable::from_json(&sabotaged),
        Err(pml_mpi::PmlError::CrossCollective { .. })
    ));
}
