//! End-to-end coverage for `pml-mpi verify`: exit 0 on healthy artifacts
//! (the committed v1 fixture and freshly generated v2 model/table files),
//! nonzero per corruption class, and a usage error without arguments.

use pml_mpi::collectives::AlltoallAlgo;
use pml_mpi::{Algorithm, Collective, PretrainedModel, TuningTable};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn pml(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pml-mpi"))
        .args(args)
        .output()
        .expect("spawning pml-mpi")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pml-verify-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/model_v1_allgather.json")
}

fn total_table_json() -> String {
    let mut t = TuningTable::new("X", Collective::Alltoall);
    for (n, p, m, a) in [
        (2, 8, 64, AlltoallAlgo::Bruck),
        (2, 8, 65536, AlltoallAlgo::Pairwise),
        (16, 8, 64, AlltoallAlgo::ScatterDest),
        (16, 8, 65536, AlltoallAlgo::Pairwise),
    ] {
        t.insert(n, p, m, Algorithm::Alltoall(a)).unwrap();
    }
    t.to_json().unwrap()
}

#[test]
fn healthy_artifacts_exit_zero() {
    let dir = scratch("ok");
    // A current-layout model (the migrated v1 fixture) and a total table.
    let v1 = std::fs::read_to_string(fixture_path()).unwrap();
    let model = dir.join("model.json");
    std::fs::write(
        &model,
        PretrainedModel::from_json(&v1).unwrap().to_json().unwrap(),
    )
    .unwrap();
    let table = dir.join("table.json");
    std::fs::write(&table, total_table_json()).unwrap();

    let out = pml(&[
        "verify",
        fixture_path().to_str().unwrap(),
        model.to_str().unwrap(),
        table.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(stdout.matches("OK (model)").count(), 2, "{stdout}");
    assert_eq!(stdout.matches("OK (tuning table)").count(), 1, "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn each_corruption_class_exits_nonzero() {
    let dir = scratch("bad");
    let v1 = std::fs::read_to_string(fixture_path()).unwrap();
    let model_json = PretrainedModel::from_json(&v1).unwrap().to_json().unwrap();

    // Truncated JSON: malformed.
    let truncated = dir.join("truncated.json");
    std::fs::write(&truncated, &model_json[..model_json.len() / 2]).unwrap();

    // Valid JSON, but no known artifact schema.
    let unknown = dir.join("unknown.json");
    std::fs::write(&unknown, "{\"a\": 1}").unwrap();

    // Structurally broken model: smash the first tree's leaf arena.
    let broken_model = dir.join("broken_model.json");
    let smashed = model_json.replacen("\"leaf_values\":[1.0", "\"leaf_values\":[0.5", 1);
    assert_ne!(smashed, model_json, "leaf arena not found to corrupt");
    std::fs::write(&broken_model, smashed).unwrap();

    // Non-total grid: 3 of the 2×1×2 cells.
    let partial_table = dir.join("partial_table.json");
    let mut t = TuningTable::new("X", Collective::Alltoall);
    for (n, p, m) in [(2, 8, 64), (2, 8, 65536), (16, 8, 64)] {
        t.insert(n, p, m, Algorithm::Alltoall(AlltoallAlgo::Bruck))
            .unwrap();
    }
    std::fs::write(&partial_table, t.to_json().unwrap()).unwrap();

    // Table whose entries belong to another collective.
    let foreign_table = dir.join("foreign_table.json");
    let flipped = total_table_json().replacen(
        "\"collective\": \"Alltoall\"",
        "\"collective\": \"Allgather\"",
        1,
    );
    assert!(
        flipped.contains("Allgather"),
        "collective field not found to flip"
    );
    std::fs::write(&foreign_table, flipped).unwrap();

    // A file that does not exist at all.
    let missing = dir.join("missing.json");

    for (path, needle) in [
        (&truncated, "malformed artifact"),
        (&unknown, "no known artifact schema"),
        (&broken_model, "forest tree 0"),
        (&partial_table, "grid missing cell"),
        (&foreign_table, "in a MPI_Allgather table"),
        (&missing, "read failed"),
    ] {
        let out = pml(&["verify", path.to_str().unwrap()]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !out.status.success(),
            "{} unexpectedly verified",
            path.display()
        );
        assert!(
            stderr.contains("FAIL") && stderr.contains(needle),
            "{}: expected `{needle}` in: {stderr}",
            path.display()
        );
        // The failure is located at the offending path.
        assert!(stderr.contains(path.to_str().unwrap()), "{stderr}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mixed_healthy_and_broken_exits_nonzero_but_reports_both() {
    let dir = scratch("mixed");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"a\": 1}").unwrap();

    let out = pml(&[
        "verify",
        fixture_path().to_str().unwrap(),
        bad.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("OK (model)"), "{stdout}");
    assert!(stderr.contains("1 of 2 artifact(s) failed"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn schedule_sweep_proves_the_grid_without_executing() {
    let out = pml(&[
        "verify",
        "--schedules",
        "--max-world",
        "5",
        "--blocks",
        "16",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("0 failure(s)"), "{stdout}");
    // All four collectives appear in the per-algorithm tally.
    for name in ["ring", "bruck", "binomial", "ring_reduce_scatter"] {
        assert!(stdout.contains(name), "missing {name} in: {stdout}");
    }
}

#[test]
fn good_schedule_doc_verifies_and_corrupt_one_fails() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let good = root.join("tests/fixtures/schedules/allgather_p2_good.json");
    let corrupt = root.join("tests/fixtures/schedules/corrupt_drop_recv.json");

    let out = pml(&["verify", "--schedules", good.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("OK (MPI_Allgather p=2 size=8)"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let out = pml(&["verify", "--schedules", corrupt.to_str().unwrap()]);
    assert!(!out.status.success(), "corrupt fixture verified");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("never received"), "{stderr}");
}

#[test]
fn schedule_flags_without_schedules_mode_are_rejected() {
    let out = pml(&["verify", "--max-world", "4", "some.json"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("only apply with --schedules"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn no_arguments_is_a_usage_error() {
    let out = pml(&["verify"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("usage: pml-mpi verify"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
