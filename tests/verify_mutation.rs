//! Mutation harness for pml-verify: corrupt model / table / binned-matrix
//! JSON one invariant at a time and check that verification reports the
//! matching typed error — and that no corruption class panics. The model
//! base artifact is the committed v1 fixture migrated to the current
//! layout, so the mutations also exercise the post-migration re-check.

use pml_mpi::collectives::AlltoallAlgo;
use pml_mpi::core::{verify_artifact_str, ArtifactKind, VerifyErrorKind};
use pml_mpi::mlcore::{BinnedMatrix, Matrix};
use pml_mpi::{Algorithm, Collective, PmlError, PretrainedModel, TuningTable};
use serde_json::JsonValue;

fn obj(v: &mut JsonValue) -> &mut Vec<(String, JsonValue)> {
    match v {
        JsonValue::Object(pairs) => pairs,
        other => panic!("expected object, got {other:?}"),
    }
}

fn field<'a>(v: &'a mut JsonValue, key: &str) -> &'a mut JsonValue {
    obj(v)
        .iter_mut()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("no field `{key}`"))
}

fn arr(v: &mut JsonValue) -> &mut Vec<JsonValue> {
    match v {
        JsonValue::Array(items) => items,
        other => panic!("expected array, got {other:?}"),
    }
}

/// The v1 fixture migrated to the current (v2 SoA) serialization: the
/// base every model mutation perturbs.
fn v2_model_json() -> String {
    let v1 = include_str!("fixtures/model_v1_allgather.json");
    PretrainedModel::from_json(v1)
        .expect("v1 fixture verifies")
        .to_json()
        .expect("model serializes")
}

/// Parse → mutate one spot in the first tree → reserialize.
fn mutate_model(f: impl FnOnce(&mut JsonValue)) -> String {
    let mut v: JsonValue = serde_json::from_str(&v2_model_json()).unwrap();
    f(&mut v);
    serde_json::to_string(&v).unwrap()
}

fn first_tree(v: &mut JsonValue) -> &mut JsonValue {
    &mut arr(field(field(v, "forest"), "trees"))[0]
}

#[test]
fn out_of_bounds_child_is_a_tree_error() {
    let json = mutate_model(|v| {
        arr(field(first_tree(v), "children"))[0] = JsonValue::UInt(9999);
    });
    assert!(matches!(
        verify_artifact_str(&json),
        Err(VerifyErrorKind::Tree { tree: 0, .. })
    ));
}

#[test]
fn child_before_parent_is_a_tree_error() {
    // A left child pointing back at the root breaks parent-before-child
    // order (the acyclicity proof).
    let json = mutate_model(|v| {
        arr(field(first_tree(v), "children"))[0] = JsonValue::UInt(0);
    });
    assert!(matches!(
        verify_artifact_str(&json),
        Err(VerifyErrorKind::Tree { tree: 0, .. })
    ));
}

#[test]
fn nonzero_leaf_sentinel_slot_is_a_tree_error() {
    let json = mutate_model(|v| {
        let tree = first_tree(v);
        let leaf = arr(field(tree, "feature"))
            .iter()
            .position(|f| f.as_u64() == Some(u16::MAX as u64))
            .expect("tree has a leaf");
        arr(field(tree, "children"))[2 * leaf] = JsonValue::UInt(7);
    });
    assert!(matches!(
        verify_artifact_str(&json),
        Err(VerifyErrorKind::Tree { tree: 0, .. })
    ));
}

#[test]
fn non_simplex_leaf_distribution_is_a_tree_error() {
    let json = mutate_model(|v| {
        let leaves = arr(field(first_tree(v), "leaf_values"));
        for slot in leaves.iter_mut() {
            *slot = JsonValue::Float(0.9);
        }
    });
    assert!(matches!(
        verify_artifact_str(&json),
        Err(VerifyErrorKind::Tree { tree: 0, .. })
    ));
}

#[test]
fn unsorted_selected_features_is_a_model_error() {
    let json = mutate_model(|v| {
        arr(field(v, "selected_features")).reverse();
    });
    assert!(matches!(
        verify_artifact_str(&json),
        Err(VerifyErrorKind::Model(_))
    ));
}

#[test]
fn from_json_routes_through_verification() {
    // The public constructor must reject what the verifier rejects — with
    // the typed error intact under `PmlError::Verify`.
    let json = mutate_model(|v| {
        arr(field(first_tree(v), "children"))[0] = JsonValue::UInt(9999);
    });
    match PretrainedModel::from_json(&json) {
        Err(PmlError::Verify(e)) => {
            assert!(
                matches!(e.kind, VerifyErrorKind::Tree { tree: 0, .. }),
                "{e}"
            );
        }
        other => panic!("expected a verify error, got {other:?}"),
    }
}

fn total_table() -> TuningTable {
    let mut t = TuningTable::new("X", Collective::Alltoall);
    for (n, p, m, a) in [
        (2, 8, 64, AlltoallAlgo::Bruck),
        (2, 8, 65536, AlltoallAlgo::Pairwise),
        (16, 8, 64, AlltoallAlgo::ScatterDest),
        (16, 8, 65536, AlltoallAlgo::Pairwise),
    ] {
        t.insert(n, p, m, Algorithm::Alltoall(a)).unwrap();
    }
    t
}

fn mutate_table(f: impl FnOnce(&mut JsonValue)) -> String {
    let mut v: JsonValue = serde_json::from_str(&total_table().to_json().unwrap()).unwrap();
    f(&mut v);
    serde_json::to_string(&v).unwrap()
}

#[test]
fn missing_grid_cell_is_an_incomplete_grid_error() {
    let json = mutate_table(|v| {
        arr(field(v, "entries")).pop();
    });
    assert!(matches!(
        verify_artifact_str(&json),
        Err(VerifyErrorKind::IncompleteGrid {
            nodes: 16,
            ppn: 8,
            msg_size: 65536
        })
    ));
}

#[test]
fn duplicated_grid_cell_is_a_duplicate_cell_error() {
    let json = mutate_table(|v| {
        let entries = arr(field(v, "entries"));
        let first = entries[0].clone();
        entries.push(first);
    });
    assert!(matches!(
        verify_artifact_str(&json),
        Err(VerifyErrorKind::DuplicateCell { .. })
    ));
}

#[test]
fn foreign_collective_is_a_cross_collective_error() {
    let json = mutate_table(|v| {
        *field(v, "collective") = JsonValue::Str("Allgather".into());
    });
    assert!(matches!(
        verify_artifact_str(&json),
        Err(VerifyErrorKind::CrossCollective {
            expected: Collective::Allgather,
            got: Collective::Alltoall,
        })
    ));
}

#[test]
fn non_monotone_bin_edges_are_a_binned_error() {
    let x = Matrix::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], 6, 1);
    let b = BinnedMatrix::from_matrix(&x, 8);
    let good = serde_json::to_string(&b).unwrap();
    assert_eq!(
        verify_artifact_str(&good),
        Ok(ArtifactKind::BinnedMatrix),
        "pristine binned matrix must verify"
    );

    let mut v: JsonValue = serde_json::from_str(&good).unwrap();
    arr(&mut arr(field(&mut v, "edges"))[0]).reverse();
    let bad = serde_json::to_string(&v).unwrap();
    assert!(matches!(
        verify_artifact_str(&bad),
        Err(VerifyErrorKind::Binned(_))
    ));
}

#[test]
fn pristine_artifacts_verify() {
    assert_eq!(
        verify_artifact_str(&v2_model_json()),
        Ok(ArtifactKind::Model)
    );
    assert_eq!(
        verify_artifact_str(&total_table().to_json().unwrap()),
        Ok(ArtifactKind::TuningTable)
    );
}

/// Property sweep: no truncation or byte-smash of either artifact may
/// panic — every corruption lands in `Err`, never in an abort.
#[test]
fn corrupted_bytes_never_panic() {
    for base in [v2_model_json(), total_table().to_json().unwrap()] {
        assert!(base.is_ascii(), "artifact JSON is ASCII");
        let step = (base.len() / 37).max(1);
        for cut in (0..base.len()).step_by(step) {
            if verify_artifact_str(&base[..cut]).is_ok() {
                panic!("truncation at {cut} verified");
            }
        }
        for pos in (0..base.len()).step_by(step) {
            let mut smashed = base.clone().into_bytes();
            smashed[pos] = b'Z';
            let smashed = String::from_utf8(smashed).unwrap();
            // A smash inside a string value can still be a valid artifact
            // (e.g. the cluster name); it must simply never panic.
            let _ = verify_artifact_str(&smashed);
            let _ = PretrainedModel::from_json(&smashed);
        }
    }
}
