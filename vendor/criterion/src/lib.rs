//! Offline substitute for `criterion` (see `vendor/README.md`).
//!
//! Same bench-authoring surface (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros) but a much simpler engine:
//! one warm-up call sizes an iteration count targeting a fixed wall-clock
//! budget, then a single timed batch reports mean ns/iter. When invoked with
//! `--test` (as `cargo test` does for harness-less bench targets) every
//! benchmark runs exactly once, so the tier-1 test gate stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget for the measured batch of each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(60);
const MAX_ITERS: u64 = 1_000_000;

pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Build from CLI args, honoring the flags cargo passes to bench
    /// targets (`--bench`, `--test`) plus an optional name filter.
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, &mut routine);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: &mut F) {
        if let Some(f) = &self.filter {
            if !id.contains(f.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            report: None,
        };
        routine(&mut bencher);
        match bencher.report {
            Some(ns) => println!("{id:<60} {:>14} ns/iter", group_digits(ns)),
            None => println!("{id:<60} (no measurement)"),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        self.criterion.run_one(&id, &mut routine);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&id, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus a parameter rendering.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

pub struct Bencher {
    test_mode: bool,
    report: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.report = Some(0.0);
            return;
        }
        // Warm-up call doubles as the iteration-count estimate.
        let warm = Instant::now();
        std::hint::black_box(routine());
        let est = warm.elapsed().max(Duration::from_nanos(1));
        let iters = (MEASURE_BUDGET.as_nanos() / est.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        let total = start.elapsed();
        self.report = Some(total.as_nanos() as f64 / iters as f64);
    }
}

/// Re-export so `criterion::black_box` call sites also work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn group_digits(ns: f64) -> String {
    let raw = format!("{ns:.0}");
    let mut out = String::new();
    for (i, c) in raw.chars().enumerate() {
        if i > 0 && (raw.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_in_normal_mode() {
        let mut b = Bencher {
            test_mode: false,
            report: None,
        };
        b.iter(|| 1 + 1);
        assert!(b.report.is_some());
    }

    #[test]
    fn test_mode_runs_once() {
        let mut count = 0u32;
        let mut b = Bencher {
            test_mode: true,
            report: None,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
