//! Offline substitute for `crossbeam` (see `vendor/README.md`).
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is provided,
//! delegating to `std::sync::mpsc`. std's unbounded channel has the same
//! semantics this workspace relies on (FIFO per sender, non-blocking sends,
//! blocking `recv` that errors once all senders are dropped).

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError};

    /// Multi-producer sender half (clonable, non-blocking sends).
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Single-consumer receiver half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            drop(tx);
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            assert!(rx.recv().is_err());
        }
    }
}
