//! Offline substitute for `rand` (see `vendor/README.md`).
//!
//! Provides the seeded subset of rand 0.8's API that this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic and high quality, but *not*
//! stream-compatible with upstream rand's ChaCha12 `StdRng`; every seeded
//! result in this repo is reproducible against this generator only.

use std::ops::Range;

/// Random number source. Object-safe core (`next_u64`/`next_f64`) plus
/// generic conveniences gated on `Self: Sized`, mirroring rand's split
/// between `RngCore` and `Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable uniformly from an rng without parameters (`rng.gen()`).
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with `rng.gen_range(..)`.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Widening-multiply bucket map: far lower bias than modulo
                // and branch-free; exact uniformity is not required here.
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + offset as $t
            }
        }
    )*};
}
impl_uint_range!(u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i64).wrapping_add(offset as i64) as $t
            }
        }
    )*};
}
impl_int_range!(i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), state filled from the seed via
    /// SplitMix64 as the xoshiro reference code recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers from rand 0.8's `SliceRandom`.
    pub trait SliceRandom {
        type Item;
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Uniform random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = StdRng::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [9u8];
        assert_eq!(one.choose(&mut rng), Some(&9));
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
