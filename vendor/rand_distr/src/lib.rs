//! Offline substitute for `rand_distr` (see `vendor/README.md`).
//!
//! Only the distributions this workspace samples: `Normal` and `LogNormal`,
//! drawn via Box–Muller (upstream uses the ziggurat, so streams differ —
//! reproducibility holds against this implementation only).

use rand::Rng;
use std::fmt;

/// A parameterized distribution that can be sampled from any [`Rng`].
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid distribution parameters (e.g. negative standard deviation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    BadVariance,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// Box–Muller standard normal draw. Uses `1 - u` to keep the log argument
/// strictly positive (`next_f64` is in `[0, 1)`).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = 1.0 - rng.next_f64();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// `exp(N(mu, sigma))` — multiplicative noise around `exp(mu)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_sigma() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
        assert!(LogNormal::new(0.0, 0.1).is_ok());
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let d = LogNormal::new(0.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert!((d.sample(&mut rng) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lognormal_moments_roughly_match() {
        let sigma = 0.25;
        let d = LogNormal::new(0.0, sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let expected = (sigma * sigma / 2.0_f64).exp();
        assert!(
            (mean - expected).abs() < 0.02,
            "sample mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn samples_are_positive() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }
}
