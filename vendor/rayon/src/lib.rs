//! Offline substitute for `rayon` (see `vendor/README.md`).
//!
//! Implements the small parallel-iterator subset this workspace uses —
//! `par_iter` / `into_par_iter` with `map`, `map_init`, `flat_map_iter`,
//! `enumerate`, `for_each`, `collect`, plus `par_chunks_mut` on slices —
//! as an *eager* fan-out: each adapter materializes its results by handing
//! items to scoped worker threads through an atomic cursor. Output order
//! always matches input order (a per-item slot array, not a concurrent
//! queue), which the datagen tests rely on. `map_init` builds its state
//! once per worker thread, matching rayon's reuse guarantee closely enough
//! for scratch-buffer recycling. Worker panics propagate to the caller
//! exactly like rayon's.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

/// A materialized parallel iterator: adapters run eagerly, in parallel,
/// preserving item order.
pub struct ParIter<T> {
    items: Vec<T>,
}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Mutable-slice entry point: `par_chunks_mut` hands out disjoint
/// `&mut [T]` windows that workers fill in parallel.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size.max(1)).collect(),
        }
    }
}

impl<T: Send> ParIter<T> {
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: par_map(self.items, &|| (), &|(), t| f(t)),
        }
    }

    /// Like `map`, but each worker thread builds one `init()` value and
    /// threads it through every item it processes — rayon's scratch-buffer
    /// reuse idiom.
    pub fn map_init<A, U, INIT, F>(self, init: INIT, f: F) -> ParIter<U>
    where
        U: Send,
        INIT: Fn() -> A + Sync,
        F: Fn(&mut A, T) -> U + Sync,
    {
        ParIter {
            items: par_map(self.items, &|| init(), &|state, t| f(state, t)),
        }
    }

    /// Eagerly run `f` on every item in parallel, discarding results.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _: Vec<()> = par_map(self.items, &|| (), &|(), t| f(t));
    }

    /// Pair each item with its input-order index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let nested = par_map(self.items, &|| (), &|(), t| {
            f(t).into_iter().collect::<Vec<U>>()
        });
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Order-preserving parallel map: worker threads pull indices from an atomic
/// cursor and write into a dedicated output slot per item. Each worker
/// builds one `init()` state up front and reuses it across its items.
fn par_map<T, U, A, INIT, F>(items: Vec<T>, init: &INIT, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    INIT: Fn() -> A + Sync,
    F: Fn(&mut A, T) -> U + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        let mut state = init();
        return items.into_iter().map(|t| f(&mut state, t)).collect();
    }

    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = inputs[i]
                        .lock()
                        .expect("rayon substitute: input slot poisoned")
                        .take()
                        .expect("rayon substitute: item taken twice");
                    let result = f(&mut state, item);
                    *outputs[i]
                        .lock()
                        .expect("rayon substitute: output slot poisoned") = Some(result);
                }
            });
        }
    });

    outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("rayon substitute: output slot poisoned")
                .expect("rayon substitute: missing output")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_flat_map_iter_preserves_order() {
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v
            .into_par_iter()
            .flat_map_iter(|x| vec![x * 10, x * 10 + 1])
            .collect();
        let expected: Vec<usize> = (0..100).flat_map(|x| [x * 10, x * 10 + 1]).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input() {
        let v: Vec<usize> = Vec::new();
        let out: Vec<usize> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn closures_can_borrow_environment() {
        let base = 7usize;
        let v: Vec<usize> = (0..64).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x + base).collect();
        assert_eq!(out[0], 7);
        assert_eq!(out[63], 70);
    }

    #[test]
    fn map_init_reuses_state_and_preserves_order() {
        let v: Vec<usize> = (0..256).collect();
        let out: Vec<usize> = v
            .par_iter()
            .map_init(
                || Vec::<usize>::with_capacity(8),
                |scratch, &x| {
                    scratch.clear();
                    scratch.push(x * 3);
                    scratch[0]
                },
            )
            .collect();
        assert_eq!(out, (0..256).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let total = AtomicUsize::new(0);
        let v: Vec<usize> = (1..=100).collect();
        v.par_iter().for_each(|&x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 5050);
    }

    #[test]
    fn enumerate_pairs_input_order_indices() {
        let v = vec!["a", "b", "c"];
        let out: Vec<(usize, &&str)> = v.par_iter().enumerate().collect();
        assert_eq!(out, vec![(0, &"a"), (1, &"b"), (2, &"c")]);
    }

    #[test]
    fn par_chunks_mut_fills_disjoint_windows() {
        let mut buf = vec![0usize; 10];
        buf.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = i * 100 + j;
            }
        });
        assert_eq!(buf, vec![0, 1, 2, 100, 101, 102, 200, 201, 202, 300]);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let v: Vec<usize> = (0..64).collect();
        let _: Vec<usize> = v
            .par_iter()
            .map(|&x| if x == 33 { panic!("boom") } else { x })
            .collect();
    }
}
