//! Offline substitute for `rayon` (see `vendor/README.md`).
//!
//! Implements the small parallel-iterator subset this workspace uses —
//! `par_iter` / `into_par_iter` with `map`, `flat_map_iter`, and `collect` —
//! as an *eager* fan-out: each adapter materializes its results by handing
//! items to scoped worker threads through an atomic cursor. Output order
//! always matches input order (a per-item slot array, not a concurrent
//! queue), which the datagen tests rely on. Worker panics propagate to the
//! caller exactly like rayon's.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// A materialized parallel iterator: adapters run eagerly, in parallel,
/// preserving item order.
pub struct ParIter<T> {
    items: Vec<T>,
}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<T: Send> ParIter<T> {
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: par_map(self.items, &f),
        }
    }

    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let nested = par_map(self.items, &|t| f(t).into_iter().collect::<Vec<U>>());
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Order-preserving parallel map: worker threads pull indices from an atomic
/// cursor and write into a dedicated output slot per item.
fn par_map<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("rayon substitute: input slot poisoned")
                    .take()
                    .expect("rayon substitute: item taken twice");
                let result = f(item);
                *outputs[i]
                    .lock()
                    .expect("rayon substitute: output slot poisoned") = Some(result);
            });
        }
    });

    outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("rayon substitute: output slot poisoned")
                .expect("rayon substitute: missing output")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_flat_map_iter_preserves_order() {
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v
            .into_par_iter()
            .flat_map_iter(|x| vec![x * 10, x * 10 + 1])
            .collect();
        let expected: Vec<usize> = (0..100).flat_map(|x| [x * 10, x * 10 + 1]).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input() {
        let v: Vec<usize> = Vec::new();
        let out: Vec<usize> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn closures_can_borrow_environment() {
        let base = 7usize;
        let v: Vec<usize> = (0..64).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x + base).collect();
        assert_eq!(out[0], 7);
        assert_eq!(out[63], 70);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let v: Vec<usize> = (0..64).collect();
        let _: Vec<usize> = v
            .par_iter()
            .map(|&x| if x == 33 { panic!("boom") } else { x })
            .collect();
    }
}
