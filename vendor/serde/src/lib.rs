//! Offline substitute for `serde` (see `vendor/README.md`).
//!
//! Real serde decouples data structures from data formats through visitor
//! traits; this substitute collapses that design to the one format the
//! workspace uses (JSON) by making every `Serialize` type convert to an
//! owned [`Value`] tree and every `Deserialize` type convert back from one.
//! The derive macros in `serde_derive` emit serde's externally-tagged
//! representation, so artifacts written by real serde_json (for example the
//! cached datasets under `data/`) parse unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON-style document tree — the interchange point between the
/// `Serialize`/`Deserialize` traits and `serde_json`'s parser/printer.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers (full `u64` range).
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Key-value pairs in insertion order (JSON objects).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion: any integer or float value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Short tag for error messages ("object", "string", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable path + expectation description.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: look up a struct field by name. A missing key is
/// retried against `Null` so `Option<T>` fields default to `None`, matching
/// serde's behavior.
pub fn __get_field<T: Deserialize>(pairs: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("{name}: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("tuple array", v))?;
                let want = 0usize $(+ { let _ = $i; 1 })+;
                if items.len() != want {
                    return Err(DeError(format!("expected tuple of length {want}, got {}", items.len())));
                }
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
