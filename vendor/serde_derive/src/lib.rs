//! Offline substitute for `serde_derive` (see `vendor/README.md`).
//!
//! Derives `Serialize`/`Deserialize` for the shapes this workspace actually
//! uses — structs with named fields and enums with unit / tuple / struct
//! variants — by walking the `proc_macro::TokenStream` directly (no syn or
//! quote available offline) and emitting the impl as source text. Enums use
//! serde's externally-tagged representation so the generated code reads and
//! writes the same JSON as real serde: a unit variant is the bare string
//! `"Name"`, a one-field tuple variant is `{"Name": value}`, a multi-field
//! tuple variant is `{"Name": [..]}`, and a struct variant is
//! `{"Name": {"field": ..}}`.
//!
//! Unsupported inputs (generics, tuple structs, `#[serde(..)]` attributes)
//! fail loudly at expansion time rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(fields) => serialize_struct(&item.name, fields),
        ItemKind::Enum(variants) => serialize_enum(&item.name, variants),
    };
    body.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(fields) => deserialize_struct(&item.name, fields),
        ItemKind::Enum(variants) => deserialize_enum(&item.name, variants),
    };
    body.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Input model

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    /// Struct variant with these named fields.
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);

    let keyword = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the offline derive");
    }

    match keyword.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: ItemKind::Struct(parse_named_fields(g.stream())),
            },
            other => panic!(
                "serde_derive: struct `{name}` must have named fields (offline derive), got {other:?}"
            ),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: ItemKind::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde_derive: expected enum body for `{name}`, got {other:?}"),
        },
        kw => panic!("serde_derive: cannot derive for `{kw} {name}`"),
    }
}

/// Consume leading `#[..]` attributes (including doc comments) and any
/// `pub` / `pub(..)` visibility.
fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, name: Type, ...` field lists, returning the names.
/// Types are skipped by walking to the next comma at angle-bracket depth 0
/// (commas inside parens/brackets/braces are hidden inside `Group` tokens).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        let mut angle_depth = 0usize;
        loop {
            match toks.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                _ => {}
            }
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                toks.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip to the trailing comma (also skips `= discriminant`).
        for tok in toks.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

/// Count comma-separated fields in a tuple-variant body at angle depth 0.
fn count_top_level_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0usize;
    let mut count = 0usize;
    let mut saw_tokens = false;
    for tok in body {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_tokens {
        count + 1
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Codegen

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let mut pairs = String::new();
    for f in fields {
        pairs.push_str(&format!(
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{pairs}])\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!("{f}: ::serde::__get_field(__pairs, \"{f}\")?,"));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let __pairs = __v.as_object().ok_or_else(|| ::serde::DeError::expected(\"struct {name}\", __v))?;\n\
                 ::std::result::Result::Ok(Self {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => arms.push_str(&format!(
                "Self::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
            )),
            VariantShape::Tuple(1) => arms.push_str(&format!(
                "Self::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),\n"
            )),
            VariantShape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "Self::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vn}\"), \
                         ::serde::Value::Array(::std::vec![{}]))]),\n",
                    binds.join(","),
                    elems.join(",")
                ));
            }
            VariantShape::Struct(fields) => {
                let binds = fields.join(",");
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "Self::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vn}\"), \
                         ::serde::Value::Object(::std::vec![{}]))]),\n",
                    pairs.join(",")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}\n}}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => unit_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}),\n"
            )),
            VariantShape::Tuple(1) => tagged_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}(\
                     ::serde::Deserialize::from_value(__inner)?)),\n"
            )),
            VariantShape::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                         let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"array for variant {name}::{vn}\", __inner))?;\n\
                         if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError(::std::format!(\
                                 \"variant {name}::{vn} expects {n} fields, got {{}}\", __items.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok(Self::{vn}({}))\n\
                     }}\n",
                    elems.join(",")
                ));
            }
            VariantShape::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::__get_field(__fields, \"{f}\")?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                         let __fields = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object for variant {name}::{vn}\", __inner))?;\n\
                         ::std::result::Result::Ok(Self::{vn} {{ {} }})\n\
                     }}\n",
                    inits.join(",")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                             \"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__tag, __inner) = &__pairs[0];\n\
                         let _ = __inner;\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\
                             __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::expected(\
                         \"variant of {name}\", __other)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
