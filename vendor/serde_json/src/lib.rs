//! Offline substitute for `serde_json` (see `vendor/README.md`).
//!
//! Parses and prints JSON against `serde`'s [`Value`] tree. The printer uses
//! Rust's shortest-roundtrip `f64` formatting (with a `.0` suffix forced onto
//! integral floats so they re-read as floats), and the parser keeps the full
//! `u64` range for non-negative integers — both required to round-trip the
//! dataset caches under `data/` byte-for-byte with files written by the real
//! serde_json.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// Parse or serialization error with a short human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn at(msg: impl Into<String>, pos: usize) -> Self {
        Error(format!("{} at byte {pos}", msg.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Printer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // Matches real serde_json: non-finite floats print as null.
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    // `5.0.to_string()` is "5" — force it back to a float token.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent over bytes)

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing characters", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::at("unexpected end of input", self.pos)),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(Error::at(
                format!("unexpected character `{}`", b as char),
                self.pos,
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(Error::at("invalid \\u escape", self.pos));
                                }
                            }
                            continue;
                        }
                        _ => return Err(Error::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape in
                    // one go; per-character validation of the remaining input
                    // would make parsing quadratic in document size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::at("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::at("invalid \\u escape", self.pos))?;
        let cp =
            u32::from_str_radix(hex, 16).map_err(|_| Error::at("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans ASCII bytes");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for src in ["null", "true", "false", "0", "-7", "18446744073709551615"] {
            let v: Value = from_str(src).unwrap();
            assert_eq!(to_string(&v).unwrap(), src);
        }
    }

    #[test]
    fn float_roundtrip_shortest() {
        let v: Value = from_str("1.755585519775635e-8").unwrap();
        let f = v.as_f64().unwrap();
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back.as_f64().unwrap(), f);
    }

    #[test]
    fn integral_float_keeps_float_token() {
        assert_eq!(to_string(&5.0f64).unwrap(), "5.0");
    }

    #[test]
    fn u64_beyond_i64_preserved() {
        let v: Value = from_str("11400714819323198485").unwrap();
        assert_eq!(v.as_u64(), Some(11400714819323198485));
    }

    #[test]
    fn nested_structures_and_escapes() {
        let src = r#"{"a":[1,{"b":"x\ny"},null],"c":{}}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(to_string(&v).unwrap(), src);
    }

    #[test]
    fn pretty_is_reparseable() {
        let src = r#"{"a":[1,2],"b":{"c":true}}"#;
        let v: Value = from_str(src).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_have_positions() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("").is_err());
    }
}
